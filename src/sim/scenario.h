// Chaos scenario runner: one deterministic end-to-end experiment.
//
// A scenario is fully described by four coordinates — (scheme, shape, plan,
// seed) — and run_scenario() turns that tuple into a complete graded
// experiment: build the topology shape, bring up a cluster of the chosen
// scheme, attach the MembershipOracle, execute the FaultPlan through the
// transport's FaultInjector hook, and run until the oracle's quiescence
// horizon has passed. The result carries the oracle's verdict plus a
// ready-to-paste reproduction command, so a red chaos-matrix entry in a CI
// log is reproducible from the test name alone.
#pragma once

#include <string>
#include <vector>

#include "obs/obs.h"
#include "protocols/cluster.h"
#include "sim/fault_plan.h"
#include "workload/workload.h"

namespace tamp::chaos {

// Topology families the matrix sweeps. Single segment exercises one flat
// level-0 group; racked is the paper's evaluation layout (TTL 2); the router
// chain makes the higher-level groups overlap (paper Fig. 4, generalized).
enum class ShapeKind { kSingleSegment, kRacked, kRouterChain };

inline constexpr ShapeKind kAllShapeKinds[] = {
    ShapeKind::kSingleSegment, ShapeKind::kRacked, ShapeKind::kRouterChain};

const char* shape_name(ShapeKind shape);

// Whether `plan` is a fair test for `scheme`. Plain gossip has no rejoin
// mechanism: after a *symmetric* split both sides remove (and quarantine)
// each other, and since targets are drawn from the local view, no packet
// ever crosses the healed boundary again. That is a real property of the
// baseline protocol, not a bug, so the bisection-style plans are skipped
// for gossip rather than graded as violations.
bool plan_applicable(protocols::Scheme scheme, PlanKind plan);

struct ScenarioSpec {
  protocols::Scheme scheme = protocols::Scheme::kHierarchical;
  ShapeKind shape = ShapeKind::kRacked;
  PlanKind plan = PlanKind::kCrashRestart;
  uint64_t seed = 1;
  size_t nodes = 12;  // total cluster size (split into 3 segments on the
                      // racked / chain shapes)
  // Extra virtual time simulated past the oracle's quiescence bound, so the
  // quiescent invariants get several check ticks.
  sim::Duration tail = 8 * sim::kSecond;
  // Hier only: run leader anti-entropy in incremental digest mode instead of
  // full periodic view refresh. Ignored by the other schemes.
  bool hier_digest = false;
  // Observability. When `trace` is set the runner enables the network's
  // structured tracer (capacity / kinds below) and returns the JSONL dump
  // in ScenarioResult::trace_jsonl — byte-identical across same-seed runs.
  // When `metrics` is set, ScenarioResult::metrics_json carries the
  // registry snapshot. Independent of either flag, every run cross-checks
  // the registry's conservation identities (per-host sums vs totals,
  // per-kind decomposition, protocol-vs-transport send counts) and grades a
  // mismatch as a failure.
  bool trace = false;
  size_t trace_capacity = size_t{1} << 16;
  uint64_t trace_kinds_mask = obs::kAllTraceKinds;
  bool metrics = false;
  // SLO mode: run the deterministic application workload (src/workload) on
  // top of the scenario — every node issues open-loop user requests through
  // its live ServiceConsumer while the fault plan executes — and return the
  // per-phase SLO report in ScenarioResult::slo_json. Workload arrivals
  // derive from `seed`, so the report is part of the reproduction tuple:
  // byte-identical across same-seed runs at any parallel-runner jobs count.
  bool slo = false;
};

// "hierarchical/racked/leader-kill/s3" — the four reproduction coordinates.
std::string scenario_name(const ScenarioSpec& spec);
// The bench/chaos_soak command line that replays this exact scenario.
std::string repro_command(const ScenarioSpec& spec);

// Flag-string parsers for the repro command (accept the canonical names
// plus the obvious short aliases). Return false on an unknown token.
bool parse_scheme(const std::string& token, protocols::Scheme* out);
bool parse_shape(const std::string& token, ShapeKind* out);
bool parse_plan(const std::string& token, PlanKind* out);

struct ScenarioResult {
  bool passed = false;
  std::string name;    // scenario_name(spec)
  std::string repro;   // repro_command(spec)
  std::string report;  // oracle violations, one per line (empty when passed)
  size_t violation_count = 0;
  uint64_t oracle_checks = 0;
  sim::Time horizon = 0;     // virtual time simulated
  uint64_t events = 0;       // simulation events executed
  size_t final_converged = 0;
  size_t final_running = 0;
  std::string trace_jsonl;   // filled when spec.trace
  std::string metrics_json;  // filled when spec.metrics
  std::string slo_json;      // filled when spec.slo (integer-only JSON)
  // Structured form of slo_json (kPhaseCount entries when spec.slo).
  std::vector<workload::PhaseSlo> slo_phases;
};

ScenarioResult run_scenario(const ScenarioSpec& spec);

// The full chaos matrix: every applicable (scheme, shape, plan, seed) tuple
// for `seed_count` consecutive seeds from `first_seed`, in canonical sweep
// order (scheme-major, then shape, then plan, then seed). This is the single
// source of truth for the grid the matrix test, chaos_soak's all/all/all
// sweep, and the parallel-runner equivalence suite all iterate.
struct MatrixOptions {
  uint64_t first_seed = 1;
  uint64_t seed_count = 3;
  size_t nodes = 12;
  bool trace = false;
  bool metrics = false;
  bool slo = false;
};
std::vector<ScenarioSpec> full_matrix(const MatrixOptions& options = {});

// The digest-mode slice: every hierarchical (shape, plan, seed) tuple from
// the same grid, with ScenarioSpec::hier_digest set. Grades the incremental
// digest anti-entropy path against the identical fault plans the full-image
// path faces.
std::vector<ScenarioSpec> digest_matrix(const MatrixOptions& options = {});

}  // namespace tamp::chaos
