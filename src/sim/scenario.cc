#include "sim/scenario.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <unordered_set>

#include "net/builders.h"
#include "protocols/oracle.h"
#include "util/check.h"
#include "util/logging.h"
#include "workload/workload.h"

namespace tamp::chaos {

using protocols::Scheme;

const char* shape_name(ShapeKind shape) {
  switch (shape) {
    case ShapeKind::kSingleSegment:
      return "single-segment";
    case ShapeKind::kRacked:
      return "racked";
    case ShapeKind::kRouterChain:
      return "router-chain";
  }
  return "?";
}

bool plan_applicable(Scheme scheme, PlanKind plan) {
  if (scheme != Scheme::kGossip) return true;
  switch (plan) {
    case PlanKind::kPartitionHeal:
    case PlanKind::kUplinkFlap:
    case PlanKind::kPauseResume:
    case PlanKind::kHealStorm:
    case PlanKind::kRouterFlap:
    case PlanKind::kRewireHeal:
      return false;  // symmetric split: gossip has no rejoin path
    default:
      return true;
  }
}

std::string scenario_name(const ScenarioSpec& spec) {
  std::string name = std::string(protocols::scheme_name(spec.scheme)) + "/" +
                     shape_name(spec.shape) + "/" + plan_name(spec.plan) +
                     "/s" + std::to_string(spec.seed);
  if (spec.hier_digest) name += "/digest";
  if (spec.slo) name += "/slo";
  return name;
}

std::string repro_command(const ScenarioSpec& spec) {
  std::string cmd = std::string("bench/chaos_soak --scheme=") +
                    protocols::scheme_name(spec.scheme) +
                    " --shape=" + shape_name(spec.shape) +
                    " --plan=" + plan_name(spec.plan) +
                    " --seed=" + std::to_string(spec.seed) +
                    " --nodes=" + std::to_string(spec.nodes);
  if (spec.hier_digest) cmd += " --hier-anti-entropy=digest";
  if (spec.slo) cmd += " --slo";
  return cmd;
}

bool parse_scheme(const std::string& token, Scheme* out) {
  if (token == "all-to-all" || token == "a2a" || token == "alltoall") {
    *out = Scheme::kAllToAll;
  } else if (token == "gossip") {
    *out = Scheme::kGossip;
  } else if (token == "hierarchical" || token == "hier") {
    *out = Scheme::kHierarchical;
  } else {
    return false;
  }
  return true;
}

bool parse_shape(const std::string& token, ShapeKind* out) {
  for (ShapeKind shape : kAllShapeKinds) {
    if (token == shape_name(shape)) {
      *out = shape;
      return true;
    }
  }
  if (token == "segment") {
    *out = ShapeKind::kSingleSegment;
    return true;
  }
  if (token == "chain") {
    *out = ShapeKind::kRouterChain;
    return true;
  }
  return false;
}

bool parse_plan(const std::string& token, PlanKind* out) {
  for (PlanKind plan : kAllPlanKinds) {
    if (token == plan_name(plan)) {
      *out = plan;
      return true;
    }
  }
  return false;
}

namespace {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

// The live fault state, consulted by the transport on every delivery
// attempt. Partitions cut deterministically; loss/delay/jitter/duplication
// windows apply to every pair.
class ChaosController : public net::FaultInjector {
 public:
  Verdict verdict(const net::Packet& packet) override {
    Verdict verdict;
    if (cut(packet.from.host, packet.to.host)) {
      verdict.cut = true;
      return verdict;
    }
    verdict.extra_loss = loss_;
    verdict.extra_delay = delay_;
    verdict.jitter = jitter_;
    verdict.duplicates = duplicates_;
    return verdict;
  }

  // Directional: are packets from `from` to `to` blackholed right now?
  bool cut(net::HostId from, net::HostId to) const {
    for (const auto& [id, partition] : partitions_) {
      bool from_in = partition.island.contains(from);
      bool to_in = partition.island.contains(to);
      if (partition.symmetric ? (from_in != to_in) : (from_in && !to_in)) {
        return true;
      }
    }
    return false;
  }

  void start_partition(int id, std::vector<net::HostId> island,
                       bool symmetric) {
    Partition partition;
    partition.island.insert(island.begin(), island.end());
    partition.symmetric = symmetric;
    partitions_[id] = std::move(partition);
  }
  void end_partition(int id) { partitions_.erase(id); }

  void set_loss(double loss) { loss_ = loss; }
  void set_delay(sim::Duration delay, sim::Duration jitter) {
    delay_ = delay;
    jitter_ = jitter;
  }
  void set_duplicates(int copies) { duplicates_ = copies; }

  bool any_active() const {
    return !partitions_.empty() || loss_ > 0 || delay_ > 0 || jitter_ > 0 ||
           duplicates_ > 0;
  }

 private:
  struct Partition {
    std::unordered_set<net::HostId> island;
    bool symmetric = true;
  };
  std::map<int, Partition> partitions_;
  double loss_ = 0.0;
  sim::Duration delay_ = 0;
  sim::Duration jitter_ = 0;
  int duplicates_ = 0;
};

// Partition ids >= this are reserved for the uplink-flap fallback on shapes
// that have no real uplinks, keyed by segment.
constexpr int kUplinkPartitionBase = 1000;
// Likewise for the router-crash fallback on shapes with no routers, keyed
// by router index.
constexpr int kRouterPartitionBase = 2000;

class ScenarioRunner {
 public:
  explicit ScenarioRunner(const ScenarioSpec& spec)
      : spec_(spec), sim_(spec.seed) {
    TAMP_CHECK(spec_.nodes >= 6);
    build_topology();
    // Finite NICs: storms must contend for egress like they would on real
    // hardware. 100 Mbit/s with a ~256 KiB device queue — small enough that
    // a naive mass-bootstrap burst visibly drops, large enough that the
    // steady-state heartbeat load never touches it.
    net::NetworkConfig net_config;
    net_config.egress_bytes_per_sec = 12.5e6;
    net_config.egress_queue_bytes = 256 * 1024;
    net_ = std::make_unique<net::Network>(sim_, topo_, net_config);
    net_->set_fault_injector(&controller_);
    if (spec_.trace) {
      obs::Tracer& tracer = net_->obs().tracer;
      tracer.set_capacity(spec_.trace_capacity);
      tracer.set_kinds_mask(spec_.trace_kinds_mask);
      tracer.set_enabled(true);
    }

    protocols::Cluster::Options opts;
    opts.scheme = spec_.scheme;
    // The rewire-heal plan can deepen the hierarchy past its build-time
    // shape (single segment: the migrant ends up behind the annex router at
    // TTL 2), so the level budget must cover the final topology, not the
    // initial one.
    const int min_ttl = spec_.plan == PlanKind::kRewireHeal ? 2 : 1;
    opts.hier.max_ttl = std::max(min_ttl, topo_.max_ttl());
    // Faster anti-entropy keeps the post-fault repair horizon (and thus the
    // whole matrix's wall time) short without changing the protocol.
    opts.hier.refresh_interval = 10 * sim::kSecond;
    // Watch the topology epoch at heartbeat cadence: mutation plans need the
    // re-scoping reaction, and on static plans the poll never fires.
    opts.hier.topology_poll_interval = opts.hier.period;
    if (spec_.hier_digest) {
      opts.hier.anti_entropy_mode = protocols::AntiEntropyMode::kDigest;
    }
    cluster_ = std::make_unique<protocols::Cluster>(sim_, *net_,
                                                    layout_.hosts, opts);

    // Gossip needs the cold start to finish its O(log n) fill-in before the
    // schedule starts grading it.
    fault_start_ = spec_.scheme == Scheme::kGossip ? 40 * sim::kSecond
                                                   : 15 * sim::kSecond;
    plan_ = make_fault_plan(spec_.plan, spec_.nodes, segment_size(),
                            fault_start_, spec_.seed);

    protocols::MembershipOracle::Config oracle_config;
    oracle_config.formation_grace = fault_start_;
    // Size the oracle's per-level bookkeeping for the deepest shape the
    // plan's mutations can produce (see min_ttl above).
    oracle_config.min_levels = min_ttl;
    oracle_ = std::make_unique<protocols::MembershipOracle>(
        sim_, *net_, topo_, *cluster_, oracle_config);
    oracle_->set_reachability([this](net::HostId from, net::HostId to) {
      return net_->host_up(from) && net_->host_up(to) &&
             topo_.path(from, to).reachable && !controller_.cut(from, to);
    });

    if (spec_.slo) {
      workload::WorkloadConfig workload_config;
      // Leave the gossip cold start outside the graded window, like
      // fault_start_ above.
      workload_config.warmup = fault_start_ - 5 * sim::kSecond;
      workload_ = std::make_unique<workload::WorkloadDriver>(
          sim_, *net_, *cluster_, workload_config, spec_.seed);
      // Phase boundaries: the fault window opens with the plan's first
      // event and the heal window with its last.
      workload_->set_phase_bounds(fault_start_, plan_.last_event_time());
    }
  }

  ScenarioResult run() {
    oracle_->start();
    cluster_->start_all();
    if (workload_ != nullptr) workload_->start();
    for (const FaultEvent& event : plan_.events) {
      const FaultAction* action = &event.action;
      sim_.schedule_at(event.at, [this, action] { apply(*action); });
    }
    const sim::Time horizon =
        plan_.last_event_time() + oracle_->quiesce_bound() + spec_.tail;
    if (workload_ != nullptr) {
      // Stop arrivals before the horizon so the in-flight tail can drain;
      // whatever is still pending at the horizon is graded as unresolved.
      sim_.schedule_at(horizon - 2 * sim::kSecond,
                       [this] { workload_->quiesce(); });
    }
    sim_.run_until(horizon);
    oracle_->stop();

    ScenarioResult result;
    result.passed = oracle_->ok();
    result.name = scenario_name(spec_);
    result.repro = repro_command(spec_);
    result.report = oracle_->report();
    result.violation_count = oracle_->violations().size();
    result.oracle_checks = oracle_->checks_run();
    result.horizon = horizon;
    result.events = sim_.events_executed();
    result.final_converged = cluster_->converged_count();
    result.final_running = cluster_->running_indices().size();
    if (workload_ != nullptr) {
      result.slo_json = workload_->report_json();
      result.slo_phases = workload_->report();
    }
    check_conservation(result);
    if (spec_.trace) result.trace_jsonl = net_->obs().tracer.to_jsonl();
    if (spec_.metrics) result.metrics_json = net_->obs().metrics.to_json();
    return result;
  }

  // Cross-checks the registry's accounting identities after the run. These
  // hold exactly — everything is counted at one place per event — so any
  // mismatch is double-counting or a leak in the instrumentation, graded
  // as a scenario failure like an oracle violation.
  void check_conservation(ScenarioResult& result) {
    const obs::MetricsRegistry& m = net_->obs().metrics;
    if (!m.enabled()) return;
    auto fail = [&](const std::string& what, uint64_t lhs, uint64_t rhs) {
      result.passed = false;
      if (!result.report.empty()) result.report += "\n";
      result.report += "metrics-conservation: " + what + " (" +
                       std::to_string(lhs) + " != " + std::to_string(rhs) +
                       ")";
    };
    // Per-host sums match the network-wide totals for every traffic family.
    for (const char* name :
         {"tx_messages", "tx_wire_bytes", "rx_messages", "rx_wire_bytes",
          "rx_multicast_messages", "dropped_messages", "tx_dropped_egress"}) {
      const uint64_t total =
          m.counter_value(obs::Protocol::kNet, name, obs::kNoNode);
      const uint64_t hosts =
          m.counter_sum_over_nodes(obs::Protocol::kNet, name);
      if (total != hosts) {
        fail(std::string("per-host ") + name + " != network total", hosts,
             total);
      }
    }
    // The per-kind attribution decomposes the totals exactly.
    const uint64_t tx_total =
        m.counter_value(obs::Protocol::kNet, "tx_messages", obs::kNoNode);
    const uint64_t tx_kinds =
        m.counter_prefix_sum(obs::Protocol::kNet, "tx_kind_");
    if (tx_total != tx_kinds) {
      fail("per-kind tx != tx_messages total", tx_kinds, tx_total);
    }
    const uint64_t tx_bytes_total =
        m.counter_value(obs::Protocol::kNet, "tx_wire_bytes", obs::kNoNode);
    const uint64_t tx_bytes_kinds =
        m.counter_prefix_sum(obs::Protocol::kNet, "tx_bytes_kind_");
    if (tx_bytes_total != tx_bytes_kinds) {
      fail("per-kind tx bytes != tx_wire_bytes total", tx_bytes_kinds,
           tx_bytes_total);
    }
    const uint64_t shed_total = m.counter_value(
        obs::Protocol::kNet, "tx_dropped_egress", obs::kNoNode);
    const uint64_t shed_kinds =
        m.counter_prefix_sum(obs::Protocol::kNet, "tx_egress_drop_kind_");
    if (shed_total != shed_kinds) {
      fail("per-kind egress drops != tx_dropped_egress total", shed_kinds,
           shed_total);
    }
    // Protocol-vs-transport identities for messages sent at exactly one
    // place: every protocol-counted send was transmitted, shed at the NIC
    // queue, or attempted while the host was down. (Hier heartbeats are
    // excluded: goodbye heartbeats bypass the protocol counter.)
    auto identity = [&](obs::Protocol protocol, std::string_view counter,
                        const std::string& kind) {
      const uint64_t sent = m.counter_sum_over_nodes(protocol, counter);
      const uint64_t wire =
          m.counter_value(obs::Protocol::kNet, "tx_kind_" + kind) +
          m.counter_value(obs::Protocol::kNet, "tx_egress_drop_kind_" + kind) +
          m.counter_value(obs::Protocol::kNet, "tx_down_kind_" + kind);
      if (sent != wire) {
        fail(std::string(counter) + " != wire " + kind + " accounting", sent,
             wire);
      }
    };
    switch (spec_.scheme) {
      case Scheme::kHierarchical:
        identity(obs::Protocol::kHier, "updates_sent", "update");
        identity(obs::Protocol::kHier, "coordinators_sent", "coordinator");
        identity(obs::Protocol::kHier, "bootstraps_requested",
                 "bootstrap_request");
        identity(obs::Protocol::kHier, "syncs_requested", "sync_request");
        identity(obs::Protocol::kHier, "busy_sent", "busy");
        identity(obs::Protocol::kHier, "digests_sent", "refresh_digest");
        identity(obs::Protocol::kHier, "digest_pulls_sent", "refresh_pull");
        identity(obs::Protocol::kHier, "deltas_sent", "refresh_delta");
        break;
      case Scheme::kGossip:
        identity(obs::Protocol::kGossip, "gossips_sent", "gossip");
        break;
      case Scheme::kAllToAll:
        identity(obs::Protocol::kAllToAll, "heartbeats_sent", "heartbeat");
        break;
    }
  }

 private:
  void build_topology() {
    switch (spec_.shape) {
      case ShapeKind::kSingleSegment:
        layout_ = net::build_single_segment(
            topo_, static_cast<int>(spec_.nodes), 0, "chaos");
        break;
      case ShapeKind::kRacked: {
        net::RackedClusterParams params;
        params.racks = 3;
        params.hosts_per_rack = static_cast<int>(spec_.nodes / 3);
        params.name_prefix = "chaos";
        layout_ = net::build_racked_cluster(topo_, params);
        break;
      }
      case ShapeKind::kRouterChain:
        layout_ = net::build_router_chain(
            topo_, 3, static_cast<int>(spec_.nodes / 3), 0, "chaos");
        break;
    }
  }

  size_t segment_size() const {
    return spec_.shape == ShapeKind::kSingleSegment ? layout_.hosts.size()
                                                    : layout_.racks[0].size();
  }

  net::HostId host(NodeIndex index) const {
    TAMP_CHECK(index < layout_.hosts.size());
    return layout_.hosts[index];
  }

  // Hosts of segment `segment` — the uplink-flap fallback island. On the
  // single-segment shape (one rack holding everyone) a whole-rack island
  // would detach nobody from nobody, so mirror make_fault_plan's island
  // rule: the first quarter of the cluster.
  std::vector<net::HostId> segment_hosts(size_t segment) const {
    if (layout_.racks.size() > 1 && segment < layout_.racks.size()) {
      return layout_.racks[segment];
    }
    size_t count = std::max<size_t>(2, layout_.hosts.size() / 4);
    return {layout_.hosts.begin(),
            layout_.hosts.begin() + static_cast<ptrdiff_t>(count)};
  }

  // The node to target with leader-directed faults, resolved at fire time:
  // for the hierarchical scheme, the running daemon leading at the highest
  // level (the root of the membership tree; ties to the lowest id); for the
  // leaderless schemes, the lowest-id running node.
  size_t leader_index() const {
    size_t best = SIZE_MAX;
    int best_level = -1;
    for (size_t i = 0; i < cluster_->size(); ++i) {
      if (!cluster_->alive(i)) continue;
      if (best == SIZE_MAX) best = i;  // lowest-id running fallback
      protocols::HierDaemon* daemon = cluster_->hier_daemon(i);
      if (daemon == nullptr || !daemon->running()) continue;
      for (int level = cluster_->options().hier.max_ttl - 1;
           level > best_level; --level) {
        if (daemon->is_leader(level)) {
          best_level = level;
          best = i;
          break;
        }
      }
    }
    TAMP_CHECK_MSG(best != SIZE_MAX, "no running node to target");
    return best;
  }

  void crash(size_t index) {
    if (!cluster_->alive(index)) return;  // already down: no-op
    // The workload agent must go first: its provider/consumer hold
    // references into the daemon the restart path will replace.
    if (workload_ != nullptr) workload_->note_kill(index);
    cluster_->kill(index);
    oracle_->note_crash(index);
  }

  void restart_node(size_t index) {
    if (cluster_->alive(index)) return;
    cluster_->restart(index);
    oracle_->note_restart(index);
    // After restart: the fresh daemon is in place for the rebuilt agent.
    if (workload_ != nullptr) workload_->note_restart(index);
  }

  void set_uplink(size_t segment, bool up) {
    if (segment < layout_.rack_uplinks.size()) {
      topo_.set_link_up(layout_.rack_uplinks[segment], up);
      uplinks_down_ += up ? -1 : 1;
      oracle_->note_topology_mutation();
    } else {
      // No physical uplink on this shape: emulate the same reachability cut
      // through the injector.
      int id = kUplinkPartitionBase + static_cast<int>(segment);
      if (up) {
        controller_.end_partition(id);
      } else {
        controller_.start_partition(id, segment_hosts(segment),
                                    /*symmetric=*/true);
      }
    }
    network_changed();
  }

  void network_changed() {
    oracle_->note_network_fault(controller_.any_active() ||
                                uplinks_down_ > 0 || routers_down_ > 0);
  }

  // The topology itself changed shape (as opposed to an injected
  // reachability cut): start invariant 11's reconvergence clock too.
  void topology_mutated() {
    oracle_->note_topology_mutation();
    network_changed();
  }

  // Crash or recover a router, all incident links at once. The index is
  // resolved modulo the routers the builder created; on the single-segment
  // shape (no routers at all) the blackout is emulated as an injector
  // partition of the router's segment.
  void set_router(size_t router, bool up) {
    if (!layout_.routers.empty()) {
      net::DeviceId device = layout_.routers[router % layout_.routers.size()];
      if (topo_.device_up(device) == up) return;  // already there: no-op
      topo_.set_device_up(device, up);
      routers_down_ += up ? -1 : 1;
      topology_mutated();
    } else {
      int id = kRouterPartitionBase + static_cast<int>(router);
      if (up) {
        controller_.end_partition(id);
      } else {
        controller_.start_partition(id, segment_hosts(router),
                                    /*symmetric=*/true);
      }
      network_changed();
    }
  }

  // Wire two segment switches directly together (a repair/shortcut link).
  // Indices resolve modulo the segment count; a self-link or a duplicate of
  // a link this runner already added is a no-op.
  void add_segment_link(size_t a, size_t b) {
    if (layout_.rack_switches.empty()) return;
    net::DeviceId sa = layout_.rack_switches[a % layout_.rack_switches.size()];
    net::DeviceId sb = layout_.rack_switches[b % layout_.rack_switches.size()];
    if (sa > sb) std::swap(sa, sb);
    if (sa == sb || added_links_.contains({sa, sb})) return;
    topo_.connect(sa, sb, net::LinkParams{20 * sim::kMicrosecond, 1e9, 0.0});
    added_links_.insert({sa, sb});
    topology_mutated();
  }

  // Re-home a node's uplink onto another segment's switch. On multi-segment
  // shapes the destination is that segment's rack switch (bumped by one if
  // the node already lives there); the single-segment shape has nowhere else
  // to go, so the first migration builds an "annex" — a new switch behind a
  // new router — which deepens the hierarchy to two levels.
  void migrate_node(NodeIndex node, size_t segment) {
    net::HostId h = host(node % layout_.hosts.size());
    net::DeviceId target;
    if (layout_.rack_switches.size() > 1) {
      target = layout_.rack_switches[segment % layout_.rack_switches.size()];
      const net::Link& uplink = topo_.link(topo_.uplink_of(h));
      net::DeviceId current = uplink.a == h ? uplink.b : uplink.a;
      if (target == current) {
        target =
            layout_.rack_switches[(segment + 1) % layout_.rack_switches.size()];
      }
    } else {
      target = annex_switch();
    }
    topo_.migrate_host(h, target);
    topology_mutated();
  }

  net::DeviceId annex_switch() {
    if (annex_switch_ == net::kInvalidDevice) {
      net::DeviceId router = topo_.add_router("chaos-annex-r");
      annex_switch_ = topo_.add_l2_switch("chaos-annex-sw");
      net::LinkParams uplink{20 * sim::kMicrosecond, 1e9, 0.0};
      topo_.connect(annex_switch_, router, uplink);
      topo_.connect(router, layout_.rack_switches[0], uplink);
    }
    return annex_switch_;
  }

  void apply(const FaultAction& action) {
    TAMP_LOG(Debug) << "chaos " << scenario_name(spec_) << " t="
                    << sim::format_time(sim_.now()) << ": "
                    << describe(action);
    net_->obs().tracer.record(obs::TraceKind::kFault, obs::kNoNode, sim_.now(),
                              -1, static_cast<uint64_t>(action.index()));
    std::visit(
        Overloaded{
            [&](const CrashFault& f) { crash(f.node); },
            [&](const RestartFault& f) { restart_node(f.node); },
            [&](const PauseFault& f) {
              net_->set_host_up(host(f.node), false);
              oracle_->note_pause(f.node);
            },
            [&](const ResumeFault& f) {
              net_->set_host_up(host(f.node), true);
              oracle_->note_resume(f.node);
            },
            [&](const LeaderCrashFault&) {
              size_t index = leader_index();
              leader_victims_.push_back(index);
              crash(index);
            },
            [&](const LeaderRestartFault&) {
              // Most recent leader victim that is still down.
              for (auto it = leader_victims_.rbegin();
                   it != leader_victims_.rend(); ++it) {
                if (!cluster_->alive(*it)) {
                  restart_node(*it);
                  return;
                }
              }
            },
            [&](const LeaderPauseFault&) {
              size_t index = leader_index();
              paused_leaders_.push_back(index);
              net_->set_host_up(host(index), false);
              oracle_->note_pause(index);
            },
            [&](const LeaderResumeFault&) {
              // Most recent leader-pause victim that is still detached.
              for (auto it = paused_leaders_.rbegin();
                   it != paused_leaders_.rend(); ++it) {
                if (!net_->host_up(host(*it))) {
                  net_->set_host_up(host(*it), true);
                  oracle_->note_resume(*it);
                  return;
                }
              }
            },
            [&](const PartitionStartFault& f) {
              std::vector<net::HostId> island;
              island.reserve(f.island.size());
              for (NodeIndex index : f.island) island.push_back(host(index));
              controller_.start_partition(f.id, std::move(island),
                                          f.symmetric);
              network_changed();
            },
            [&](const PartitionEndFault& f) {
              controller_.end_partition(f.id);
              network_changed();
            },
            [&](const UplinkDownFault& f) { set_uplink(f.segment, false); },
            [&](const UplinkUpFault& f) { set_uplink(f.segment, true); },
            [&](const LossStartFault& f) {
              controller_.set_loss(f.loss);
              network_changed();
            },
            [&](const LossEndFault&) {
              controller_.set_loss(0.0);
              network_changed();
            },
            [&](const DelayStartFault& f) {
              controller_.set_delay(f.extra, f.jitter);
              network_changed();
            },
            [&](const DelayEndFault&) {
              controller_.set_delay(0, 0);
              network_changed();
            },
            [&](const DuplicateStartFault& f) {
              controller_.set_duplicates(f.copies);
              network_changed();
            },
            [&](const DuplicateEndFault&) {
              controller_.set_duplicates(0);
              network_changed();
            },
            [&](const RouterCrashFault& f) { set_router(f.router, false); },
            [&](const RouterRestartFault& f) { set_router(f.router, true); },
            [&](const LinkAddFault& f) {
              add_segment_link(f.segment_a, f.segment_b);
            },
            [&](const HostMigrateFault& f) { migrate_node(f.node, f.segment); },
        },
        action);
  }

  ScenarioSpec spec_;
  sim::Simulation sim_;
  net::Topology topo_;
  net::ClusterLayout layout_;
  std::unique_ptr<net::Network> net_;
  ChaosController controller_;
  std::unique_ptr<protocols::Cluster> cluster_;
  std::unique_ptr<protocols::MembershipOracle> oracle_;
  std::unique_ptr<workload::WorkloadDriver> workload_;
  FaultPlan plan_;
  sim::Time fault_start_ = 0;
  std::vector<size_t> leader_victims_;
  std::vector<size_t> paused_leaders_;
  int uplinks_down_ = 0;
  int routers_down_ = 0;
  net::DeviceId annex_switch_ = net::kInvalidDevice;
  std::set<std::pair<net::DeviceId, net::DeviceId>> added_links_;
};

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  ScenarioRunner runner(spec);
  return runner.run();
}

std::vector<ScenarioSpec> full_matrix(const MatrixOptions& options) {
  std::vector<ScenarioSpec> specs;
  for (Scheme scheme :
       {Scheme::kAllToAll, Scheme::kGossip, Scheme::kHierarchical}) {
    for (ShapeKind shape : kAllShapeKinds) {
      for (PlanKind plan : kAllPlanKinds) {
        if (!plan_applicable(scheme, plan)) continue;
        for (uint64_t s = 0; s < options.seed_count; ++s) {
          ScenarioSpec spec;
          spec.scheme = scheme;
          spec.shape = shape;
          spec.plan = plan;
          spec.seed = options.first_seed + s;
          spec.nodes = options.nodes;
          spec.trace = options.trace;
          spec.metrics = options.metrics;
          spec.slo = options.slo;
          specs.push_back(spec);
        }
      }
    }
  }
  return specs;
}

std::vector<ScenarioSpec> digest_matrix(const MatrixOptions& options) {
  std::vector<ScenarioSpec> specs;
  for (ShapeKind shape : kAllShapeKinds) {
    for (PlanKind plan : kAllPlanKinds) {
      if (!plan_applicable(Scheme::kHierarchical, plan)) continue;
      for (uint64_t s = 0; s < options.seed_count; ++s) {
        ScenarioSpec spec;
        spec.scheme = Scheme::kHierarchical;
        spec.shape = shape;
        spec.plan = plan;
        spec.seed = options.first_seed + s;
        spec.nodes = options.nodes;
        spec.trace = options.trace;
        spec.metrics = options.metrics;
        spec.slo = options.slo;
        spec.hier_digest = true;
        specs.push_back(spec);
      }
    }
  }
  return specs;
}

}  // namespace tamp::chaos
