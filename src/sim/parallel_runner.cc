#include "sim/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

namespace tamp::chaos {

namespace {

using ScenarioFn = std::function<ScenarioResult(const ScenarioSpec&)>;

// A thrown scenario becomes a failed result for its own slot; the report
// carries the exception text next to the repro command so a red entry in a
// parallel batch is as actionable as an oracle violation.
ScenarioResult failure_result(const ScenarioSpec& spec,
                              const std::string& what) {
  ScenarioResult result;
  result.passed = false;
  result.name = scenario_name(spec);
  result.repro = repro_command(spec);
  result.report = "parallel-runner: scenario threw: " + what;
  result.violation_count = 1;
  return result;
}

ScenarioResult run_one(const ScenarioFn& run, const ScenarioSpec& spec) {
  try {
    return run(spec);
  } catch (const std::exception& e) {
    return failure_result(spec, e.what());
  } catch (...) {
    return failure_result(spec, "unknown exception");
  }
}

}  // namespace

size_t effective_jobs(size_t requested, size_t scenarios) {
  size_t jobs = requested;
  if (jobs == 0) {
    jobs = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  // Surplus workers would only contend on the queue head and exit; don't
  // spawn them at all.
  return std::max<size_t>(1, std::min(jobs, std::max<size_t>(1, scenarios)));
}

std::vector<ScenarioResult> run_scenarios(
    const std::vector<ScenarioSpec>& specs,
    const ParallelRunOptions& options) {
  const ScenarioFn run =
      options.run ? options.run : ScenarioFn(&run_scenario);
  std::vector<ScenarioResult> results(specs.size());
  if (specs.empty()) return results;

  const size_t jobs = effective_jobs(options.jobs, specs.size());
  if (jobs == 1) {
    // Inline serial path — the baseline the parallel path must match
    // byte-for-byte. No threads are spawned.
    for (size_t i = 0; i < specs.size(); ++i) {
      results[i] = run_one(run, specs[i]);
      if (options.on_result) options.on_result(i, results[i]);
    }
    return results;
  }

  // Shared work queue: the next unclaimed spec index. Workers self-schedule
  // by claiming tickets, which load-balances uneven scenario costs without
  // any static partitioning.
  std::atomic<size_t> next{0};
  std::mutex mutex;
  std::condition_variable completed_cv;
  std::vector<char> completed(specs.size(), 0);

  std::vector<std::thread> workers;
  workers.reserve(jobs);
  for (size_t w = 0; w < jobs; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= specs.size()) return;
        ScenarioResult result = run_one(run, specs[i]);
        {
          std::lock_guard<std::mutex> lock(mutex);
          results[i] = std::move(result);
          completed[i] = 1;
        }
        completed_cv.notify_all();
      }
    });
  }

  // Ordered drain on the calling thread: emit result i only once 0..i-1
  // have been emitted, regardless of completion order. After `completed[i]`
  // is observed under the lock, the owning worker never touches slot i
  // again, so the callback may read it unlocked.
  for (size_t i = 0; i < specs.size(); ++i) {
    std::unique_lock<std::mutex> lock(mutex);
    completed_cv.wait(lock, [&] { return completed[i] != 0; });
    lock.unlock();
    if (options.on_result) options.on_result(i, results[i]);
  }
  for (std::thread& worker : workers) worker.join();
  return results;
}

}  // namespace tamp::chaos
