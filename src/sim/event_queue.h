// Pending-event set for the discrete-event engine.
//
// A binary heap of (time, sequence) keys. Ties in time are broken by
// insertion order so execution is fully deterministic. Cancellation is
// lazy: cancelled entries stay in the heap and are skipped on pop, which
// keeps cancel() O(1) — protocols cancel timers constantly (every heartbeat
// refreshes a failure-suspicion timer).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace tamp::sim {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  EventId push(Time t, std::function<void()> fn);

  // Cancels a pending event; returns false if it already ran or was
  // cancelled. Safe to call with kInvalidEventId.
  bool cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  // Time of the earliest pending event; undefined when empty().
  Time next_time();

  // Pops and returns the earliest event's callback, advancing past cancelled
  // entries. Must not be called when empty().
  struct Fired {
    Time t;
    EventId id;
    std::function<void()> fn;
  };
  Fired pop();

  uint64_t total_scheduled() const { return next_seq_ - 1; }

 private:
  struct HeapEntry {
    Time t;
    uint64_t seq;  // doubles as EventId
    bool operator>(const HeapEntry& other) const {
      if (t != other.t) return t > other.t;
      return seq > other.seq;
    }
  };

  void skip_cancelled();

  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;
  std::unordered_map<EventId, std::function<void()>> pending_;
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
};

}  // namespace tamp::sim
