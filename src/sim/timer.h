// Timer helpers built on Simulation.
//
// PeriodicTimer fires a callback every `period`, optionally with a random
// initial phase so a cluster's heartbeats don't all fire on the same tick
// (mirrors real daemons starting at different times). OneShotTimer is a
// restartable deadline — the idiom for failure-suspicion timeouts.
#pragma once

#include <functional>
#include <utility>

#include "sim/simulation.h"

namespace tamp::sim {

class PeriodicTimer {
 public:
  PeriodicTimer(Simulation& sim, Duration period, std::function<void()> fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}

  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  // Starts ticking; first fire after `initial_delay` (default: one period).
  void start(Duration initial_delay = -1) {
    stop();
    running_ = true;
    Duration first = initial_delay >= 0 ? initial_delay : period_;
    event_ = sim_.schedule_after(first, [this] { fire(); });
  }

  // Starts with a uniformly random phase in [0, period).
  void start_with_random_phase() {
    start(static_cast<Duration>(
        sim_.rng().uniform_u64(static_cast<uint64_t>(period_))));
  }

  void stop() {
    if (running_) {
      sim_.cancel(event_);
      running_ = false;
      event_ = kInvalidEventId;
    }
  }

  bool running() const { return running_; }
  Duration period() const { return period_; }
  void set_period(Duration period) { period_ = period; }

 private:
  void fire() {
    if (!running_) return;
    event_ = sim_.schedule_after(period_, [this] { fire(); });
    fn_();
  }

  Simulation& sim_;
  Duration period_;
  std::function<void()> fn_;
  bool running_ = false;
  EventId event_ = kInvalidEventId;
};

class OneShotTimer {
 public:
  OneShotTimer(Simulation& sim, std::function<void()> fn)
      : sim_(sim), fn_(std::move(fn)) {}

  ~OneShotTimer() { cancel(); }
  OneShotTimer(const OneShotTimer&) = delete;
  OneShotTimer& operator=(const OneShotTimer&) = delete;

  // (Re)arm the timer to fire after `delay`; any previous arm is cancelled.
  void restart(Duration delay) {
    cancel();
    armed_ = true;
    event_ = sim_.schedule_after(delay, [this] {
      armed_ = false;
      fn_();
    });
  }

  void cancel() {
    if (armed_) {
      sim_.cancel(event_);
      armed_ = false;
      event_ = kInvalidEventId;
    }
  }

  bool armed() const { return armed_; }

 private:
  Simulation& sim_;
  std::function<void()> fn_;
  bool armed_ = false;
  EventId event_ = kInvalidEventId;
};

}  // namespace tamp::sim
