#include "sim/simulation.h"

#include "util/check.h"
#include "util/strings.h"

namespace tamp::sim {

std::string format_time(Time t) {
  return util::strformat("%.6fs", to_seconds(t));
}

EventId Simulation::schedule_at(Time t, std::function<void()> fn) {
  TAMP_CHECK_MSG(t >= now_, "cannot schedule into the past");
  return queue_.push(t, std::move(fn));
}

EventId Simulation::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return queue_.push(now_ + delay, std::move(fn));
}

uint64_t Simulation::run_until(Time deadline) {
  uint64_t executed = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    auto fired = queue_.pop();
    now_ = fired.t;
    if (trace_hook_) trace_hook_(fired.t, fired.id);
    fired.fn();
    ++executed;
    ++events_executed_;
  }
  if (now_ < deadline && deadline != std::numeric_limits<Time>::max()) {
    now_ = deadline;
  }
  return executed;
}

void Simulation::advance_to(Time t) {
  TAMP_CHECK(t >= now_);
  run_until(t);
}

}  // namespace tamp::sim
