// Declarative fault schedules for chaos testing.
//
// A FaultPlan is a pure data object: a named, time-ordered list of fault
// events against a cluster of `n` nodes, expressed in node *indices* (not
// HostIds) so the same plan applies to any topology shape. Plans are
// generated deterministically from a seed; the ScenarioRunner (scenario.h)
// executes them against a live simulation and the MembershipOracle grades
// the protocol's behaviour under them.
//
// Vocabulary (what the executor can do with each action):
//  * Crash / Restart        — kill the daemon + host; restart with a new
//                             incarnation (crash-restart churn).
//  * Pause / Resume         — detach the host from the network without
//                             stopping the daemon: it keeps running on
//                             stale state and replays it on resume.
//  * PartitionStart/End     — sever an island of nodes from the rest via
//                             the transport FaultInjector. `symmetric`
//                             false cuts only island→rest (asymmetric
//                             reachability, the nastier case).
//  * UplinkDown/UplinkUp    — administratively fail a rack/segment uplink
//                             in the Topology (switch failure); falls back
//                             to an injector partition on shapes with no
//                             uplinks.
//  * LossStart/End          — extra per-fragment loss on every path.
//  * DelayStart/End         — fixed latency spike plus uniform jitter;
//                             jitter > 0 reorders packets.
//  * DuplicateStart/End     — deliver extra copies of every packet.
//  * LeaderCrash            — kill the current level-0 leader (resolved at
//                             fire time; lowest-id running node for the
//                             schemes that have no leaders).
//  * LeaderRestart          — restart the most recent LeaderCrash victim.
//  * LeaderPause/Resume     — the pause-across-election primitive: detach
//                             the *current* top leader (resolved at fire
//                             time) long enough for its peers to elect a
//                             successor, then reattach it. The resumed node
//                             still believes it leads and replays its stale
//                             view — the stale-COORDINATOR interleaving.
//  * RouterCrash/Restart    — power-cycle an infrastructure router (all its
//                             incident links down/up atomically), changing
//                             ttl_required() mid-run; falls back to an
//                             injector partition of the router's segment on
//                             shapes with no routers.
//  * LinkAdd                — wire a new switch-switch link, healing the
//                             network into a *different* shape (segments
//                             that were TTL 2+ apart become TTL 1).
//  * HostMigrate            — re-home one host onto another segment's
//                             switch (rack move): its distances to every
//                             peer change while it stays alive throughout.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "sim/time.h"

namespace tamp::chaos {

using NodeIndex = size_t;  // index into the cluster's host list

struct CrashFault {
  NodeIndex node = 0;
};
struct RestartFault {
  NodeIndex node = 0;
};
struct PauseFault {
  NodeIndex node = 0;
};
struct ResumeFault {
  NodeIndex node = 0;
};
struct LeaderCrashFault {};
struct LeaderRestartFault {};
struct LeaderPauseFault {};
struct LeaderResumeFault {};
struct PartitionStartFault {
  int id = 0;  // matches the PartitionEndFault that heals it
  std::vector<NodeIndex> island;
  bool symmetric = true;  // false: only island→rest packets are cut
};
struct PartitionEndFault {
  int id = 0;
};
struct UplinkDownFault {
  size_t segment = 0;  // rack / segment whose uplink fails
};
struct UplinkUpFault {
  size_t segment = 0;
};
struct LossStartFault {
  double loss = 0.0;
};
struct LossEndFault {};
struct DelayStartFault {
  sim::Duration extra = 0;
  sim::Duration jitter = 0;
};
struct DelayEndFault {};
struct DuplicateStartFault {
  int copies = 1;
};
struct DuplicateEndFault {};
// Topology-mutation verbs. `router`, `segment_a/b`, and `segment` are
// shape-relative indices (resolved modulo the layout's router / segment
// count at fire time), like UplinkDown's `segment`.
struct RouterCrashFault {
  size_t router = 0;
};
struct RouterRestartFault {
  size_t router = 0;
};
struct LinkAddFault {
  size_t segment_a = 0;
  size_t segment_b = 0;
};
struct HostMigrateFault {
  NodeIndex node = 0;    // which host moves
  size_t segment = 0;    // destination segment's switch
};

// New verbs append at the end: the variant index is traced (kFault payload),
// so insertion would silently renumber existing trace baselines.
using FaultAction =
    std::variant<CrashFault, RestartFault, PauseFault, ResumeFault,
                 LeaderCrashFault, LeaderRestartFault, LeaderPauseFault,
                 LeaderResumeFault, PartitionStartFault, PartitionEndFault,
                 UplinkDownFault, UplinkUpFault, LossStartFault, LossEndFault,
                 DelayStartFault, DelayEndFault, DuplicateStartFault,
                 DuplicateEndFault, RouterCrashFault, RouterRestartFault,
                 LinkAddFault, HostMigrateFault>;

struct FaultEvent {
  sim::Time at = 0;
  FaultAction action;
};

struct FaultPlan {
  std::string name;
  std::vector<FaultEvent> events;  // sorted by `at`

  // Time of the last scheduled fault — the oracle's quiescence clock
  // starts here.
  sim::Time last_event_time() const;
};

// One-line human rendering of an action ("crash node 7", "partition start
// id=1 island={0,1,2,3} asym", ...) for violation reports and logs.
std::string describe(const FaultAction& action);

// The canned adversarial schedules the chaos matrix sweeps. Every plan is a
// deterministic function of (kind, nodes, segment_size, start, seed).
enum class PlanKind {
  kCrashRestart,   // random crashes, one crash-restart with new incarnation
  kPartitionHeal,  // symmetric island partition, then heal
  kAsymmetricCut,  // one-directional island cut, then heal
  kLossStorm,      // heavy loss + latency spike + jitter + duplication
  kLeaderKill,     // kill the leader, then its successor; restart the first
  kPauseResume,    // pause the leader across an election (stale-COORDINATOR
                   // replay on resume) + a short follower blip
  kUplinkFlap,     // segment uplink down/up (topology-level partition)
  kJoinStorm,      // half the cluster joins at one instant (mass bootstrap:
                   // the admission-control / retry-amplification stressor)
  kRestartStorm,   // two overlapping waves of crash+restart across almost
                   // every node (churn at recovery-path scale)
  kHealStorm,      // two islands partitioned at staggered times, healed
                   // together (mass view re-merge: sync/refresh stressor)
  kRouterFlap,     // crash a router mid-run and power it back: every group
                   // whose scope spanned it must re-form, twice
  kRewireHeal,     // crash a router, then heal into a *different* shape
                   // (new switch-switch link + one host migrated) before
                   // the router returns — distances change three times
  kCount,          // sentinel, not a plan
};

inline constexpr PlanKind kAllPlanKinds[] = {
    PlanKind::kCrashRestart, PlanKind::kPartitionHeal,
    PlanKind::kAsymmetricCut, PlanKind::kLossStorm,
    PlanKind::kLeaderKill,    PlanKind::kPauseResume,
    PlanKind::kUplinkFlap,    PlanKind::kJoinStorm,
    PlanKind::kRestartStorm,  PlanKind::kHealStorm,
    PlanKind::kRouterFlap,    PlanKind::kRewireHeal,
};
inline constexpr size_t kPlanKindCount =
    static_cast<size_t>(PlanKind::kCount);
// A new PlanKind must be added to kAllPlanKinds (and handled in plan_name()
// + make_fault_plan(), which the exhaustiveness test sweeps via this array).
static_assert(std::size(kAllPlanKinds) == kPlanKindCount,
              "kAllPlanKinds is missing a PlanKind");

const char* plan_name(PlanKind kind);

// Build the canned plan `kind` for a cluster of `nodes` hosts laid out in
// segments of `segment_size` (1 segment == single L2 domain). Faults begin
// at `start` (after the cold-start settle) and victims/islands are chosen
// from Rng(seed), so a (kind, nodes, segment_size, start, seed) tuple fully
// reproduces the schedule.
FaultPlan make_fault_plan(PlanKind kind, size_t nodes, size_t segment_size,
                          sim::Time start, uint64_t seed);

}  // namespace tamp::chaos
